package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"ndsearch/internal/ann"
	"ndsearch/internal/engine"
	"ndsearch/internal/vec"
)

// Server exposes a sharded engine over HTTP: POST /search for single
// and batch queries, GET /healthz for liveness, GET /stats for the
// engine's cumulative serving counters.
type Server struct {
	engine  *engine.Engine
	dim     int
	dataset string
	algo    string
	// defaultK applies when a request omits k.
	defaultK int
	// maxBatch rejects oversized batch requests.
	maxBatch int
	// maxBodyBytes caps the /search request body before JSON decoding,
	// so the maxBatch check cannot be bypassed by one huge payload.
	maxBodyBytes int64
}

// NewServer wraps a built engine. dim is the corpus dimensionality used
// to validate request vectors.
func NewServer(e *engine.Engine, dim int, dataset, algo string) *Server {
	return &Server{
		engine: e, dim: dim, dataset: dataset, algo: algo,
		defaultK: 10, maxBatch: 4096, maxBodyBytes: 64 << 20,
	}
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// SearchRequest is the /search payload. Exactly one of Query (single)
// or Queries (batch) must be set.
type SearchRequest struct {
	Query   []float32   `json:"query,omitempty"`
	Queries [][]float32 `json:"queries,omitempty"`
	K       int         `json:"k,omitempty"`
}

// SearchResult is one neighbor on the wire.
type SearchResult struct {
	ID   uint32  `json:"id"`
	Dist float32 `json:"dist"`
}

// BatchInfo reports the executed batch, mirroring engine.BatchStats.
type BatchInfo struct {
	Size      int     `json:"size"`
	Shards    int     `json:"shards"`
	LatencyUS float64 `json:"latency_us"`
	QPS       float64 `json:"qps"`
}

// SearchResponse is the /search reply: Results[i] answers query i.
type SearchResponse struct {
	Results [][]SearchResult `json:"results"`
	Batch   BatchInfo        `json:"batch"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req SearchRequest
	body := http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", s.maxBodyBytes)
			return
		}
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	batch, err := s.batchOf(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	k := req.K
	if k == 0 {
		k = s.defaultK
	}
	if k < 1 {
		httpError(w, http.StatusBadRequest, "k must be >= 1, got %d", k)
		return
	}
	results, st := s.engine.SearchBatch(batch, k)
	resp := SearchResponse{
		Results: make([][]SearchResult, len(results)),
		Batch: BatchInfo{
			Size:      st.BatchSize,
			Shards:    st.Shards,
			LatencyUS: float64(st.Latency) / float64(time.Microsecond),
			QPS:       st.QPS,
		},
	}
	for i, ns := range results {
		resp.Results[i] = toWire(ns)
	}
	writeJSON(w, http.StatusOK, resp)
}

// batchOf validates the request shape and returns the query batch.
func (s *Server) batchOf(req *SearchRequest) ([]vec.Vector, error) {
	var raw [][]float32
	switch {
	case req.Query != nil && req.Queries != nil:
		return nil, fmt.Errorf("set either query or queries, not both")
	case req.Query != nil:
		raw = [][]float32{req.Query}
	case req.Queries != nil:
		raw = req.Queries
	default:
		return nil, fmt.Errorf("missing query or queries")
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("empty batch")
	}
	if len(raw) > s.maxBatch {
		return nil, fmt.Errorf("batch of %d exceeds limit %d", len(raw), s.maxBatch)
	}
	batch := make([]vec.Vector, len(raw))
	for i, q := range raw {
		if len(q) != s.dim {
			return nil, fmt.Errorf("query %d has dim %d, corpus dim is %d", i, len(q), s.dim)
		}
		batch[i] = vec.Vector(q)
	}
	return batch, nil
}

func toWire(ns []ann.Neighbor) []SearchResult {
	out := make([]SearchResult, len(ns))
	for i, n := range ns {
		out[i] = SearchResult{ID: n.ID, Dist: n.Dist}
	}
	return out
}

// HealthResponse is the /healthz payload.
type HealthResponse struct {
	Status  string `json:"status"`
	Dataset string `json:"dataset"`
	Algo    string `json:"algo"`
	Vectors int    `json:"vectors"`
	Shards  int    `json:"shards"`
	Workers int    `json:"workers"`
	Dim     int    `json:"dim"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status: "ok", Dataset: s.dataset, Algo: s.algo,
		Vectors: s.engine.Len(), Shards: s.engine.Shards(),
		Workers: s.engine.Workers(), Dim: s.dim,
	})
}

// StatsResponse is the /stats payload: cumulative engine counters.
type StatsResponse struct {
	Batches            int64   `json:"batches"`
	Queries            int64   `json:"queries"`
	ShardSearches      int64   `json:"shard_searches"`
	BusyUS             float64 `json:"busy_us"`
	MeanQueryLatencyUS float64 `json:"mean_query_latency_us"`
	MaxBatchLatencyUS  float64 `json:"max_batch_latency_us"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.engine.Stats()
	writeJSON(w, http.StatusOK, StatsResponse{
		Batches:            st.Batches,
		Queries:            st.Queries,
		ShardSearches:      st.ShardSearches,
		BusyUS:             float64(st.Busy) / float64(time.Microsecond),
		MeanQueryLatencyUS: float64(st.MeanQueryLatency()) / float64(time.Microsecond),
		MaxBatchLatencyUS:  float64(st.MaxBatchLatency) / float64(time.Microsecond),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

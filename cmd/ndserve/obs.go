package main

import (
	"log"
	"net/http"
	"net/http/pprof"
	"time"

	"ndsearch/internal/obs"
)

// Observability endpoints: GET /metrics serves the obs registry in
// Prometheus text exposition format; -pprof additionally mounts the
// net/http/pprof profilers under /debug/pprof/. Both surfaces get the
// same wrong-method handling (405 + Allow) as the other read-only
// ndserve endpoints, and the registry is always live — scraping costs
// nothing when nobody scrapes.

// EnablePprof mounts the /debug/pprof/ endpoints on the next Handler
// call. Off by default: the profilers expose heap contents and can
// suspend the process (e.g. /debug/pprof/trace), so they are opt-in via
// the -pprof flag.
func (s *Server) EnablePprof() { s.pprofOn = true }

// SetSlowQueryLog enables the slow-query log: /search requests whose
// handler wall time meets or exceeds threshold emit one structured line
// on logger. threshold <= 0 disables; a nil logger uses the process
// default.
func (s *Server) SetSlowQueryLog(threshold time.Duration, logger *log.Logger) {
	s.slowQuery = threshold
	if logger == nil {
		logger = log.Default()
	}
	s.slowLog = logger
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !allowGet(w, r) {
		return
	}
	w.Header().Set("Content-Type", obs.ExpositionContentType)
	w.WriteHeader(http.StatusOK)
	if r.Method == http.MethodHead {
		return
	}
	_ = s.metrics.WritePrometheus(w)
}

// mountPprof registers the pprof handlers on mux behind the same
// GET/HEAD method gate as the other read-only endpoints.
func mountPprof(mux *http.ServeMux) {
	getOnly := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if !allowGet(w, r) {
				return
			}
			h(w, r)
		}
	}
	mux.HandleFunc("/debug/pprof/", getOnly(pprof.Index))
	mux.HandleFunc("/debug/pprof/cmdline", getOnly(pprof.Cmdline))
	mux.HandleFunc("/debug/pprof/profile", getOnly(pprof.Profile))
	mux.HandleFunc("/debug/pprof/symbol", getOnly(pprof.Symbol))
	mux.HandleFunc("/debug/pprof/trace", getOnly(pprof.Trace))
}

// logSlowQuery emits the one-line slow-query record: logfmt-style
// key=value pairs so the line is grep- and machine-friendly.
func (s *Server) logSlowQuery(elapsed time.Duration, k, queries int, info BatchInfo) {
	s.slowLog.Printf(
		"slowquery dataset=%s algo=%s latency_us=%.0f threshold_us=%.0f k=%d queries=%d batch_size=%d coalesced=%t coalesce_wait_us=%.0f",
		s.dataset, s.algo,
		float64(elapsed)/float64(time.Microsecond),
		float64(s.slowQuery)/float64(time.Microsecond),
		k, queries, info.Size, info.Coalesced, info.CoalesceWaitUS,
	)
}

// Command ndserve runs the sharded batch-search engine as an HTTP
// service over a generated corpus — the serving-path counterpart to
// cmd/ndsearch's figure reproduction.
//
// Usage:
//
//	ndserve [flags]
//
// Endpoints:
//
//	POST /search   {"query":[...], "k":10} or {"queries":[[...],...], "k":10}
//	GET  /healthz  liveness + engine configuration
//	GET  /stats    cumulative serving counters
//
// Flags:
//
//	-addr           listen address (default :8080)
//	-dataset        dataset profile (default sift-1b)
//	-algo           shard index: exact, hnsw, diskann (default hnsw)
//	-n              corpus size (default 20000)
//	-shards         shard count (default 4)
//	-workers        worker-pool size (default GOMAXPROCS)
//	-seed           generation/build seed (default 1)
//	-coalesce-max   coalesced batch size threshold, 0 disables (default 256)
//	-coalesce-wait  coalescing deadline (default 500us)
//
// With coalescing enabled (the default), concurrent single-query
// /search requests are admitted through a micro-batcher that forms
// engine batches of up to -coalesce-max queries, dispatching at the
// latest -coalesce-wait after a request arrives.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"ndsearch/internal/batcher"
	"ndsearch/internal/dataset"
	"ndsearch/internal/engine"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	profName := flag.String("dataset", "sift-1b", "dataset profile name")
	algo := flag.String("algo", "hnsw", "shard index algorithm (exact, hnsw, diskann)")
	n := flag.Int("n", 20000, "corpus size")
	shards := flag.Int("shards", 4, "shard count")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "generation/build seed")
	coalesceMax := flag.Int("coalesce-max", batcher.DefaultMaxBatch,
		"coalesced batch size threshold for single-query requests (0 disables coalescing)")
	coalesceWait := flag.Duration("coalesce-wait", batcher.DefaultMaxWait,
		"max time a single-query request waits for a coalesced batch to form")
	flag.Parse()

	srv, err := buildServer(*profName, *algo, *n, *shards, *workers, *seed, *coalesceMax, *coalesceWait)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ndserve: %v\n", err)
		os.Exit(1)
	}
	log.Printf("ndserve: listening on %s", *addr)
	// No srv.Close() on this path: in-flight handlers may still be mid
	// SearchBatch when the accept loop fails, and the process is exiting
	// anyway. Close exists for embedders and tests.
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}

// buildServer generates the corpus, builds the sharded engine, and
// wraps it in a Server, enabling coalescing when coalesceMax > 0. Split
// from main so tests can drive it.
func buildServer(profName, algo string, n, shards, workers int, seed int64,
	coalesceMax int, coalesceWait time.Duration) (*Server, error) {
	prof, err := dataset.ProfileByName(profName)
	if err != nil {
		return nil, err
	}
	d, err := dataset.Generate(prof, dataset.GenConfig{N: n, Queries: 1, Seed: seed})
	if err != nil {
		return nil, err
	}
	builder, err := engine.BuilderByName(algo, prof.Metric, seed)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	e, err := engine.New(d.Vectors, engine.Config{Shards: shards, Workers: workers, Builder: builder})
	if err != nil {
		return nil, err
	}
	log.Printf("ndserve: built %d-shard %s engine over %d %s vectors in %v",
		e.Shards(), algo, e.Len(), profName, time.Since(start).Round(time.Millisecond))
	srv := NewServer(e, prof.Dim, profName, algo)
	if coalesceMax > 0 {
		srv.EnableCoalescing(batcher.Config{MaxBatch: coalesceMax, MaxWait: coalesceWait})
		log.Printf("ndserve: coalescing single-query requests (max %d, wait %v)",
			coalesceMax, coalesceWait)
	}
	return srv, nil
}

// Command ndserve runs the sharded batch-search engine as an HTTP
// service over a generated corpus — the serving-path counterpart to
// cmd/ndsearch's figure reproduction.
//
// Usage:
//
//	ndserve [flags]
//
// Endpoints:
//
//	POST /search   {"query":[...], "k":10} or {"queries":[[...],...], "k":10}
//	POST /upsert   {"id":7, "vector":[...]} or {"items":[{"id":7,"vector":[...]},...]}
//	POST /delete   {"id":7} or {"ids":[7, 8, ...]}
//	POST /compact  drain the delta tier into a new base generation now
//	GET  /healthz  liveness + engine configuration (incl. generation count)
//	GET  /stats    cumulative serving counters (incl. mutation/compaction)
//	GET  /metrics  Prometheus text exposition (latency/batch-size
//	               histograms, coalescer wait, compaction, page and
//	               mutation counters; DESIGN.md §13)
//	GET  /debug/pprof/*  runtime profilers (only with -pprof)
//
// Flags:
//
//	-addr           listen address (default :8080)
//	-dataset        dataset profile (default sift-1b)
//	-algo           shard index family, any registered algorithm
//	                (engine.Algos: exact, hnsw, diskann, hcnng, togg,
//	                ivfpq; default hnsw)
//	-n              corpus size (default 20000)
//	-shards         shard count (default 4)
//	-workers        worker-pool size (default GOMAXPROCS)
//	-seed           generation/build seed (default 1)
//	-quantized      build shards with the SQ8 compressed traversal tier
//	-rerank         exact-rerank width when quantized, 0 = full list (default 0)
//	-coalesce-max   coalesced batch size threshold, 0 disables (default 256)
//	-coalesce-wait  coalescing deadline (default 500us)
//	-compact-threshold  delta shadow-set size that triggers background
//	                compaction, 0 disables (manual /compact only;
//	                default engine.DefaultCompactThreshold)
//	-slow-query     log /search requests slower than this as one
//	                structured line each (0 disables; default 0)
//	-pprof          mount net/http/pprof under /debug/pprof/ (default off)
//	-save-index     build the engine, persist it to this directory, exit
//	-load-index     restore the engine from this directory instead of building
//	-serve          shard serving mode with -load-index: ram (default,
//	                fully resident), mmap, or readat (beyond-RAM paged)
//	-cache-pages    paged serving: per-shard page-cache budget in 4 KiB
//	                pages (0 = snapshot default)
//
// /upsert and /delete land writes in the engine's mutable delta tier;
// searches see them immediately, exactly merged against the immutable
// base shards under tombstone filtering (DESIGN.md §12). Compaction —
// background past -compact-threshold, or on demand via POST /compact —
// drains the delta into a freshly built base generation.
//
// With coalescing enabled (the default), concurrent single-query
// /search requests are admitted through a micro-batcher that forms
// engine batches of up to -coalesce-max queries, dispatching at the
// latest -coalesce-wait after a request arrives.
//
// -save-index and -load-index are the build-once / serve-many split:
// one invocation pays graph construction and writes a checksummed
// snapshot (internal/snapshot, DESIGN.md §8); every later invocation
// warm-starts from the snapshot in file-I/O time without invoking any
// index build. With -serve mmap (or readat), the loaded shards are not
// materialized at all: node records are traversed straight out of the
// page-aligned snapshot files through a bounded page cache (DESIGN.md
// §10), serving corpora larger than resident memory with results
// byte-identical to -serve ram; /stats then reports the software
// page-touch and fault counters. On SIGINT/SIGTERM the server drains gracefully:
// in-flight (including coalesced) searches complete before the process
// exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ndsearch/internal/batcher"
	"ndsearch/internal/dataset"
	"ndsearch/internal/engine"
)

// shutdownGrace bounds how long a drain may take after a signal.
const shutdownGrace = 15 * time.Second

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	profName := flag.String("dataset", "sift-1b", "dataset profile name")
	algo := flag.String("algo", "hnsw",
		fmt.Sprintf("shard index algorithm (%s)", strings.Join(engine.Algos(), ", ")))
	n := flag.Int("n", 20000, "corpus size")
	shards := flag.Int("shards", 4, "shard count")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "generation/build seed")
	quantized := flag.Bool("quantized", false,
		"build shard indexes with the SQ8 compressed traversal tier (hnsw, diskann)")
	rerank := flag.Int("rerank", 0,
		"exact-rerank width for -quantized (0 = rerank the full candidate list)")
	coalesceMax := flag.Int("coalesce-max", batcher.DefaultMaxBatch,
		"coalesced batch size threshold for single-query requests (0 disables coalescing)")
	coalesceWait := flag.Duration("coalesce-wait", batcher.DefaultMaxWait,
		"max time a single-query request waits for a coalesced batch to form")
	saveIndex := flag.String("save-index", "", "build the engine, save it to this directory, and exit")
	loadIndex := flag.String("load-index", "", "serve from a saved engine directory (skips corpus generation and build)")
	serveMode := flag.String("serve", engine.ServeRAM,
		"shard serving mode with -load-index: ram, mmap, or readat (paged beyond-RAM serving)")
	cachePages := flag.Int("cache-pages", 0,
		"paged serving: per-shard page-cache budget in 4 KiB pages (0 = snapshot default)")
	compactThreshold := flag.Int("compact-threshold", engine.DefaultCompactThreshold,
		"delta shadow-set size that triggers background compaction (0 disables; POST /compact still works)")
	slowQuery := flag.Duration("slow-query", 0,
		"log /search requests slower than this as one structured line each (0 disables)")
	pprofOn := flag.Bool("pprof", false,
		"mount the net/http/pprof profilers under /debug/pprof/")
	flag.Parse()

	if err := validateFlags(*n, *shards, *workers, *rerank, *coalesceMax, *coalesceWait,
		*saveIndex, *loadIndex, *serveMode, *cachePages, *compactThreshold, *slowQuery); err != nil {
		fmt.Fprintf(os.Stderr, "ndserve: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	var (
		srv *Server
		err error
	)
	if *loadIndex != "" {
		lo := engine.LoadOptions{Workers: *workers, Serve: *serveMode, CachePages: *cachePages}
		srv, err = loadServer(*loadIndex, lo, *coalesceMax, *coalesceWait)
	} else {
		opts := engine.IndexOpts{Quantized: *quantized, Rerank: *rerank}
		srv, err = buildServer(*profName, *algo, *n, *shards, *workers, *seed, opts, *coalesceMax, *coalesceWait)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ndserve: %v\n", err)
		os.Exit(1)
	}
	if *compactThreshold > 0 && !srv.engine.ReadOnly() {
		srv.EnableCompaction(*compactThreshold)
		log.Printf("ndserve: background compaction at delta shadow-set size %d", *compactThreshold)
	}
	if *slowQuery > 0 {
		srv.SetSlowQueryLog(*slowQuery, nil)
		log.Printf("ndserve: logging /search requests slower than %v", *slowQuery)
	}
	if *pprofOn {
		srv.EnablePprof()
		log.Printf("ndserve: pprof profilers mounted under /debug/pprof/")
	}

	if *saveIndex != "" {
		start := time.Now()
		if err := srv.engine.Save(*saveIndex); err != nil {
			fmt.Fprintf(os.Stderr, "ndserve: %v\n", err)
			os.Exit(1)
		}
		log.Printf("ndserve: saved %d-shard index to %s in %v",
			srv.engine.Shards(), *saveIndex, time.Since(start).Round(time.Millisecond))
		srv.Close()
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ndserve: %v\n", err)
		os.Exit(1)
	}
	log.Printf("ndserve: listening on %s", ln.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if err := serve(&http.Server{Handler: srv.Handler()}, srv, ln, sig, shutdownGrace); err != nil {
		log.Fatal(err)
	}
}

// validateFlags rejects configurations that would build a broken engine
// or batcher, before any work happens. workers and coalesce-max may be
// zero (their documented "default / disabled" values) but never
// negative; n and shards must be positive; rerank and coalesce-wait
// must be non-negative; -save-index and -load-index are mutually
// exclusive (save persists a fresh build); paged -serve modes need a
// snapshot directory to page from, so they require -load-index;
// compact-threshold may be zero (background compaction disabled) but
// never negative; slow-query may be zero (log disabled) but never
// negative.
func validateFlags(n, shards, workers, rerank, coalesceMax int, coalesceWait time.Duration,
	saveIndex, loadIndex, serveMode string, cachePages, compactThreshold int,
	slowQuery time.Duration) error {
	if loadIndex == "" { // corpus/build flags are unused on the load path
		if n < 1 {
			return fmt.Errorf("-n must be >= 1, got %d", n)
		}
		if shards < 1 {
			return fmt.Errorf("-shards must be >= 1, got %d", shards)
		}
	}
	switch serveMode {
	case engine.ServeRAM:
	case engine.ServeMmap, engine.ServeReadAt:
		if loadIndex == "" {
			return fmt.Errorf("-serve %s pages node records out of a saved snapshot; it requires -load-index", serveMode)
		}
	default:
		return fmt.Errorf("-serve must be %s, %s, or %s, got %q",
			engine.ServeRAM, engine.ServeMmap, engine.ServeReadAt, serveMode)
	}
	if cachePages < 0 {
		return fmt.Errorf("-cache-pages must be >= 0 (0 = snapshot default), got %d", cachePages)
	}
	if rerank < 0 {
		return fmt.Errorf("-rerank must be >= 0 (0 = full candidate list), got %d", rerank)
	}
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = GOMAXPROCS), got %d", workers)
	}
	if coalesceMax < 0 {
		return fmt.Errorf("-coalesce-max must be >= 0 (0 disables coalescing), got %d", coalesceMax)
	}
	if coalesceWait < 0 {
		return fmt.Errorf("-coalesce-wait must be >= 0, got %v", coalesceWait)
	}
	if saveIndex != "" && loadIndex != "" {
		return fmt.Errorf("-save-index and -load-index are mutually exclusive")
	}
	if compactThreshold < 0 {
		return fmt.Errorf("-compact-threshold must be >= 0 (0 disables background compaction), got %d", compactThreshold)
	}
	if slowQuery < 0 {
		return fmt.Errorf("-slow-query must be >= 0 (0 disables the slow-query log), got %v", slowQuery)
	}
	return nil
}

// serve runs hsrv on ln until the listener fails or a shutdown signal
// arrives, then drains gracefully: http.Server.Shutdown (with a
// deadline) stops accepting and waits for in-flight handlers — so
// coalesced searches queued in the batcher complete and respond — and
// only then srv.Close drains the batcher and stops the engine's worker
// pool. Both exit paths go through Shutdown first: handlers may still
// be mid-search even when the accept loop fails, and closing the
// batcher/engine under them would panic their channel sends. If the
// grace deadline expires with handlers still running, srv is left
// unclosed on purpose (the process is exiting anyway).
func serve(hsrv *http.Server, srv *Server, ln net.Listener, sig <-chan os.Signal, grace time.Duration) error {
	errCh := make(chan error, 1)
	go func() { errCh <- hsrv.Serve(ln) }()
	var serveErr error
	select {
	case serveErr = <-errCh:
		log.Printf("ndserve: serve failed (%v): draining in-flight searches", serveErr)
	case s := <-sig:
		log.Printf("ndserve: %v: draining in-flight searches", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := hsrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("ndserve: shutdown: %w", err)
	}
	srv.Close()
	if serveErr != nil {
		return serveErr
	}
	log.Printf("ndserve: drained, exiting")
	return nil
}

// buildServer generates the corpus, builds the sharded engine, and
// wraps it in a Server, enabling coalescing when coalesceMax > 0. Split
// from main so tests can drive it.
func buildServer(profName, algo string, n, shards, workers int, seed int64,
	opts engine.IndexOpts, coalesceMax int, coalesceWait time.Duration) (*Server, error) {
	prof, err := dataset.ProfileByName(profName)
	if err != nil {
		return nil, err
	}
	d, err := dataset.Generate(prof, dataset.GenConfig{N: n, Queries: 1, Seed: seed})
	if err != nil {
		return nil, err
	}
	builder, err := engine.BuilderWithOpts(algo, prof.Metric, seed, opts)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	e, err := engine.New(d.Vectors, engine.Config{
		Shards: shards, Workers: workers, Builder: builder,
		Meta: engine.Meta{
			Algo: algo, Dataset: profName, Seed: seed, Elem: prof.Elem,
			Quantized: opts.Quantized, Rerank: opts.Rerank,
		},
	})
	if err != nil {
		return nil, err
	}
	mode := ""
	if opts.Quantized {
		mode = " (sq8)"
	}
	log.Printf("ndserve: built %d-shard %s%s engine over %d %s vectors in %v",
		e.Shards(), algo, mode, e.Len(), profName, time.Since(start).Round(time.Millisecond))
	return newServer(e, prof.Dim, profName, algo, coalesceMax, coalesceWait), nil
}

// loadServer warm-starts the engine from a snapshot directory written
// by -save-index (or engine.Save): no corpus generation, no index
// build — the serving configuration comes from the manifest. With a
// paged serving mode, shard node records stay in the files and are
// traversed through a bounded per-shard page cache.
func loadServer(dir string, lo engine.LoadOptions, coalesceMax int, coalesceWait time.Duration) (*Server, error) {
	start := time.Now()
	e, man, err := engine.LoadWithOptions(dir, lo)
	if err != nil {
		return nil, err
	}
	log.Printf("ndserve: loaded %d-shard %s engine over %d %s vectors from %s in %v (serve=%s, format v%d)",
		e.Shards(), man.Algo, e.Len(), man.Dataset, dir,
		time.Since(start).Round(time.Millisecond), e.ServeMode(), e.FormatVersion())
	return newServer(e, man.Dim, man.Dataset, man.Algo, coalesceMax, coalesceWait), nil
}

func newServer(e *engine.Engine, dim int, dataset, algo string,
	coalesceMax int, coalesceWait time.Duration) *Server {
	srv := NewServer(e, dim, dataset, algo)
	if coalesceMax > 0 {
		srv.EnableCoalescing(batcher.Config{MaxBatch: coalesceMax, MaxWait: coalesceWait})
		log.Printf("ndserve: coalescing single-query requests (max %d, wait %v)",
			coalesceMax, coalesceWait)
	}
	return srv
}

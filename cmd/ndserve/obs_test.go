package main

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"ndsearch/internal/batcher"
	"ndsearch/internal/obs"
)

func get(h http.Handler, path string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestMetricsEndpoint(t *testing.T) {
	srv, d := testServer(t, 2)
	h := srv.Handler()

	// A scrape before any traffic is already a valid exposition.
	rec := get(h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.ExpositionContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.ExpositionContentType)
	}
	if !strings.Contains(rec.Body.String(), "nd_search_queries_total 0") {
		t.Fatalf("cold scrape missing zero counter:\n%s", rec.Body.String())
	}

	if rec, resp := postSearch(t, h, SearchRequest{Query: asFloats(d.Queries[0])}); resp == nil {
		t.Fatalf("search failed: %d %s", rec.Code, rec.Body.String())
	}
	out := get(h, "/metrics").Body.String()
	for _, want := range []string{
		"# TYPE nd_search_latency_seconds histogram",
		`nd_search_latency_seconds_bucket{le="+Inf"} 1`,
		"nd_search_latency_seconds_count 1",
		"nd_search_queries_total 1",
		"nd_search_batches_total 1",
		"nd_shard_searches_total 2",
		"# TYPE nd_live_vectors gauge",
		"nd_live_vectors 500",
		"nd_generation 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Wrong method: 405 plus Allow, like every read-only endpoint.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/metrics", strings.NewReader("{}")))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d, want 405", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); !strings.Contains(allow, http.MethodGet) {
		t.Fatalf("Allow = %q, want GET", allow)
	}

	// HEAD: headers only.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodHead, "/metrics", nil))
	if rec.Code != http.StatusOK || rec.Body.Len() != 0 {
		t.Fatalf("HEAD /metrics = %d with %d body bytes, want 200 and empty", rec.Code, rec.Body.Len())
	}
}

func TestPprofGating(t *testing.T) {
	srv, _ := testServer(t, 2)
	if rec := get(srv.Handler(), "/debug/pprof/"); rec.Code != http.StatusNotFound {
		t.Fatalf("pprof disabled: GET /debug/pprof/ = %d, want 404", rec.Code)
	}

	srv.EnablePprof()
	h := srv.Handler()
	if rec := get(h, "/debug/pprof/"); rec.Code != http.StatusOK {
		t.Fatalf("pprof enabled: GET /debug/pprof/ = %d, want 200", rec.Code)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/debug/pprof/", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /debug/pprof/ = %d, want 405", rec.Code)
	}
}

func TestSlowQueryLog(t *testing.T) {
	srv, d := testServer(t, 2)
	h := srv.Handler()
	var buf bytes.Buffer
	srv.SetSlowQueryLog(time.Nanosecond, log.New(&buf, "", 0))

	if rec, resp := postSearch(t, h, SearchRequest{Query: asFloats(d.Queries[0])}); resp == nil {
		t.Fatalf("search failed: %d %s", rec.Code, rec.Body.String())
	}
	line := buf.String()
	for _, want := range []string{
		"slowquery ", "dataset=" + d.Profile.Name, "algo=exact",
		"latency_us=", "threshold_us=", "k=10", "queries=1", "coalesced=false",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("slow-query line missing %q: %q", want, line)
		}
	}

	// Above-traffic threshold: nothing logged.
	buf.Reset()
	srv.SetSlowQueryLog(time.Hour, log.New(&buf, "", 0))
	if rec, resp := postSearch(t, h, SearchRequest{Query: asFloats(d.Queries[0])}); resp == nil {
		t.Fatalf("search failed: %d %s", rec.Code, rec.Body.String())
	}
	if buf.Len() != 0 {
		t.Fatalf("fast query logged as slow: %q", buf.String())
	}
}

// TestSearchTraceOptIn pins the wire contract: "trace": true returns
// the identical results plus a non-empty span list; without it the
// trace key is absent entirely.
func TestSearchTraceOptIn(t *testing.T) {
	srv, d := testServer(t, 3)
	h := srv.Handler()
	req := SearchRequest{K: 5}
	for _, q := range d.Queries[:4] {
		req.Queries = append(req.Queries, asFloats(q))
	}

	rec, plain := postSearch(t, h, req)
	if plain == nil {
		t.Fatalf("search failed: %d %s", rec.Code, rec.Body.String())
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, present := raw["trace"]; present {
		t.Fatal("untraced response must omit the trace key")
	}

	req.Trace = true
	rec, traced := postSearch(t, h, req)
	if traced == nil {
		t.Fatalf("traced search failed: %d %s", rec.Code, rec.Body.String())
	}
	if !reflect.DeepEqual(plain.Results, traced.Results) {
		t.Fatalf("traced results differ from untraced:\n%v\n%v", plain.Results, traced.Results)
	}
	stages := make(map[string]int)
	for _, s := range traced.Trace {
		stages[s.Stage]++
	}
	if stages["fanout"] != 1 || stages["merge"] != 1 {
		t.Fatalf("trace stages = %v, want one fanout and one merge", stages)
	}
	if got := stages["shard_search"]; got != 4*3 {
		t.Fatalf("%d shard_search spans, want %d", got, 4*3)
	}
}

// TestSearchTraceCoalesced drives the traced coalesced path: the
// admission wait gets its own span and the request adopts the shared
// engine batch's spans.
func TestSearchTraceCoalesced(t *testing.T) {
	srv, d := testServer(t, 2)
	srv.EnableCoalescing(batcher.Config{MaxBatch: 8, MaxWait: 200 * time.Microsecond})
	h := srv.Handler()

	req := SearchRequest{Query: asFloats(d.Queries[0]), K: 5, Trace: true}
	rec, traced := postSearch(t, h, req)
	if traced == nil {
		t.Fatalf("traced coalesced search failed: %d %s", rec.Code, rec.Body.String())
	}
	if !traced.Batch.Coalesced {
		t.Fatal("request did not ride the coalescer")
	}
	stages := make(map[string]int)
	for _, s := range traced.Trace {
		stages[s.Stage]++
	}
	for _, want := range []string{"coalesce_wait", "fanout", "shard_search", "merge"} {
		if stages[want] == 0 {
			t.Fatalf("coalesced trace missing %q: %v", want, stages)
		}
	}

	// Untraced through the same coalescer returns the same neighbors.
	rec, plain := postSearch(t, h, SearchRequest{Query: asFloats(d.Queries[0]), K: 5})
	if plain == nil {
		t.Fatalf("search failed: %d %s", rec.Code, rec.Body.String())
	}
	if !reflect.DeepEqual(plain.Results, traced.Results) {
		t.Fatalf("coalesced traced results differ:\n%v\n%v", plain.Results, traced.Results)
	}
}

func TestHealthzGenerations(t *testing.T) {
	srv, d := testServer(t, 2)
	h := srv.Handler()

	generations := func() int {
		t.Helper()
		rec := get(h, "/healthz")
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /healthz = %d", rec.Code)
		}
		var hr HealthResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
			t.Fatal(err)
		}
		return hr.Generations
	}

	if got := generations(); got != 0 {
		t.Fatalf("generations = %d before compaction, want 0", got)
	}

	// One upsert dirties the delta so /compact has work to drain.
	id := uint32(len(d.Vectors))
	body, _ := json.Marshal(UpsertRequest{ID: &id, Vector: asFloats(d.Queries[0])})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/upsert", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /upsert = %d %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/compact", strings.NewReader("{}")))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /compact = %d %s", rec.Code, rec.Body.String())
	}

	if got := generations(); got != 1 {
		t.Fatalf("generations = %d after compaction, want 1", got)
	}
}

package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ndsearch/internal/dataset"
	"ndsearch/internal/engine"
)

// The CLI beyond-RAM path end to end: -save-index then -serve mmap
// serves byte-identical results to RAM serving of the same directory,
// /healthz reports the serving mode and snapshot format version, and
// /stats carries the page counters.
func TestServeModeMmapFlow(t *testing.T) {
	built, err := buildServer("sift-1b", "hnsw", 400, 2, 2, 7, engine.IndexOpts{}, 0, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(built.Close)
	dir := t.TempDir()
	if err := built.engine.Save(dir); err != nil {
		t.Fatal(err)
	}

	ram, err := loadServer(dir, engine.LoadOptions{Workers: 2}, 0, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ram.Close)
	paged, err := loadServer(dir, engine.LoadOptions{Workers: 2, Serve: engine.ServeMmap, CachePages: 8}, 0, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(paged.Close)

	var health HealthResponse
	rec := httptest.NewRecorder()
	paged.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil || rec.Code != http.StatusOK {
		t.Fatalf("healthz: code %d err %v", rec.Code, err)
	}
	if health.Serve != engine.ServeMmap && health.Serve != engine.ServeReadAt {
		t.Fatalf("paged server reports serve %q", health.Serve)
	}
	if health.SnapshotFormat < 3 {
		t.Fatalf("paged server reports snapshot format %d", health.SnapshotFormat)
	}

	prof := dataset.Sift1B()
	d, err := dataset.Generate(prof, dataset.GenConfig{N: 1, Queries: 6, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range d.Queries {
		req := SearchRequest{Query: asFloats(q), K: 10}
		_, respRAM := postSearch(t, ram.Handler(), req)
		_, respPaged := postSearch(t, paged.Handler(), req)
		a, b := respRAM.Results[0], respPaged.Results[0]
		if len(a) != len(b) {
			t.Fatalf("paged returned %d results, ram %d", len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("result %d: ram %+v, paged %+v", i, a[i], b[i])
			}
		}
	}

	var stats StatsResponse
	rec = httptest.NewRecorder()
	paged.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil || rec.Code != http.StatusOK {
		t.Fatalf("stats: code %d err %v", rec.Code, err)
	}
	if stats.Serve != health.Serve {
		t.Fatalf("stats serve %q, healthz says %q", stats.Serve, health.Serve)
	}
	if stats.Pages == nil || stats.Pages.Touches == 0 || stats.Pages.Faults == 0 {
		t.Fatalf("paged /stats pages section missing or idle: %+v", stats.Pages)
	}
	if stats.Pages.IOErrors != 0 {
		t.Fatalf("paged serving hit %d I/O errors", stats.Pages.IOErrors)
	}

	// The RAM server's /stats has no pages section and reports serve=ram.
	rec = httptest.NewRecorder()
	ram.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var ramStats StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ramStats); err != nil {
		t.Fatal(err)
	}
	if ramStats.Serve != engine.ServeRAM || ramStats.Pages != nil {
		t.Fatalf("ram /stats reports serve=%q pages=%+v", ramStats.Serve, ramStats.Pages)
	}
}

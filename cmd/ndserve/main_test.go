package main

import (
	"bytes"
	"encoding/json"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"ndsearch/internal/ann"
	"ndsearch/internal/batcher"
	"ndsearch/internal/dataset"
	"ndsearch/internal/engine"
	"ndsearch/internal/vec"
)

// testServer builds a small exact-sharded server plus the corpus it
// serves, so tests can check wire results against ground truth.
func testServer(t *testing.T, shards int) (*Server, *dataset.Dataset) {
	t.Helper()
	prof := dataset.Sift1B()
	d, err := dataset.Generate(prof, dataset.GenConfig{N: 500, Queries: 16, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := engine.BuilderByName("exact", prof.Metric, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(d.Vectors, engine.Config{Shards: shards, Workers: 4, Builder: b})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(e, prof.Dim, prof.Name, "exact")
	t.Cleanup(srv.Close)
	return srv, d
}

func postSearch(t *testing.T, h http.Handler, req SearchRequest) (*httptest.ResponseRecorder, *SearchResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		return rec, nil
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response JSON: %v", err)
	}
	return rec, &resp
}

func asFloats(v vec.Vector) []float32 { return []float32(v) }

// The acceptance check: batch /search across >= 2 shards returns exactly
// what an unsharded index returns for every query.
func TestBatchSearchMatchesUnsharded(t *testing.T) {
	srv, d := testServer(t, 3)
	h := srv.Handler()
	req := SearchRequest{K: 10}
	for _, q := range d.Queries {
		req.Queries = append(req.Queries, asFloats(q))
	}
	rec, resp := postSearch(t, h, req)
	if resp == nil {
		t.Fatalf("search failed: %d %s", rec.Code, rec.Body.String())
	}
	if len(resp.Results) != len(d.Queries) {
		t.Fatalf("got %d result lists, want %d", len(resp.Results), len(d.Queries))
	}
	if resp.Batch.Shards != 3 || resp.Batch.Size != len(d.Queries) {
		t.Fatalf("bad batch info %+v", resp.Batch)
	}
	unsharded := ann.NewExact(d.Profile.Metric, d.Vectors)
	for qi, q := range d.Queries {
		want := unsharded.Search(q, 10)
		got := resp.Results[qi]
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || got[i].Dist != want[i].Dist {
				t.Fatalf("query %d result %d: got %+v, want %+v", qi, i, got[i], want[i])
			}
		}
	}
}

func TestSingleQueryAndDefaultK(t *testing.T) {
	srv, d := testServer(t, 2)
	rec, resp := postSearch(t, srv.Handler(), SearchRequest{Query: asFloats(d.Queries[0])})
	if resp == nil {
		t.Fatalf("search failed: %d %s", rec.Code, rec.Body.String())
	}
	if len(resp.Results) != 1 || len(resp.Results[0]) != 10 {
		t.Fatalf("want 1 list of default k=10, got %d lists, first len %d",
			len(resp.Results), len(resp.Results[0]))
	}
}

func TestSearchRejectsBadRequests(t *testing.T) {
	srv, d := testServer(t, 2)
	h := srv.Handler()
	q := asFloats(d.Queries[0])
	for name, req := range map[string]SearchRequest{
		"empty":     {},
		"both":      {Query: q, Queries: [][]float32{q}},
		"wrong dim": {Query: q[:4]},
		"bad k":     {Query: q, K: -1},
	} {
		if rec, _ := postSearch(t, h, req); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400", name, rec.Code)
		}
	}
	// Non-POST and malformed JSON.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /search: code %d, want 405", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader([]byte("{"))))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON: code %d, want 400", rec.Code)
	}
}

// NaN/Inf query components poison heap ordering; admission must reject
// them with a 400-shaped error before they reach the engine. (JSON
// itself cannot carry NaN/Inf literals, so the check is exercised at
// the batchOf validation seam all request paths share.)
func TestRejectsNonFiniteQueryComponents(t *testing.T) {
	srv, d := testServer(t, 2)
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	q := append([]float32(nil), asFloats(d.Queries[0])...)
	for name, bad := range map[string]float32{"NaN": nan, "+Inf": inf, "-Inf": -inf} {
		q[3] = bad
		if _, err := srv.batchOf(&SearchRequest{Query: q}); err == nil {
			t.Errorf("%s component accepted, want rejection", name)
		}
		if _, err := srv.batchOf(&SearchRequest{Queries: [][]float32{asFloats(d.Queries[0]), q}}); err == nil {
			t.Errorf("%s component in batch accepted, want rejection", name)
		}
	}
	q[3] = 1.5
	if _, err := srv.batchOf(&SearchRequest{Query: q}); err != nil {
		t.Errorf("finite query rejected: %v", err)
	}
}

// /healthz and /stats are read-only: anything but GET/HEAD is a 405,
// matching /search's method check.
func TestHealthzStatsRejectNonGet(t *testing.T) {
	srv, _ := testServer(t, 2)
	h := srv.Handler()
	for _, path := range []string{"/healthz", "/stats"} {
		for _, method := range []string{http.MethodPost, http.MethodDelete, http.MethodPut} {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
			if rec.Code != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: code %d, want 405", method, path, rec.Code)
			}
			if allow := rec.Header().Get("Allow"); allow != "GET, HEAD" {
				t.Errorf("%s %s: Allow = %q", method, path, allow)
			}
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodHead, path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("HEAD %s: code %d, want 200", path, rec.Code)
		}
	}
}

// With coalescing enabled, a single-query request returns the same
// results as the direct path and reports coalesced batch info; /stats
// grows a coalescer section.
func TestCoalescedSingleQueryPath(t *testing.T) {
	srv, d := testServer(t, 2)
	srv.EnableCoalescing(batcher.Config{MaxBatch: 8, MaxWait: 200 * time.Microsecond})
	h := srv.Handler()
	unsharded := ann.NewExact(d.Profile.Metric, d.Vectors)
	for qi, q := range d.Queries[:4] {
		rec, resp := postSearch(t, h, SearchRequest{Query: asFloats(q), K: 5})
		if resp == nil {
			t.Fatalf("query %d failed: %d %s", qi, rec.Code, rec.Body.String())
		}
		if !resp.Batch.Coalesced || resp.Batch.Size < 1 || resp.Batch.CoalescedSubmits < 1 {
			t.Fatalf("query %d: batch info not coalesced: %+v", qi, resp.Batch)
		}
		want := unsharded.Search(q, 5)
		if len(resp.Results) != 1 || len(resp.Results[0]) != len(want) {
			t.Fatalf("query %d: bad result shape", qi)
		}
		for i := range want {
			if resp.Results[0][i].ID != want[i].ID || resp.Results[0][i].Dist != want[i].Dist {
				t.Fatalf("query %d result %d: got %+v, want %+v",
					qi, i, resp.Results[0][i], want[i])
			}
		}
	}
	// Explicit batches stay on the direct path.
	_, resp := postSearch(t, h, SearchRequest{
		Queries: [][]float32{asFloats(d.Queries[0]), asFloats(d.Queries[1])}, K: 3,
	})
	if resp == nil || resp.Batch.Coalesced {
		t.Fatalf("explicit batch must not be coalesced: %+v", resp)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var stats StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Coalescer == nil || stats.Coalescer.Submits != 4 || stats.Coalescer.Batches < 1 {
		t.Fatalf("bad coalescer stats: %+v", stats.Coalescer)
	}
	if len(stats.PerShardSearches) != 2 {
		t.Fatalf("per_shard_searches = %v, want 2 shards", stats.PerShardSearches)
	}
}

func TestSearchRejectsOversizedBody(t *testing.T) {
	srv, d := testServer(t, 2)
	srv.maxBodyBytes = 256
	rec, _ := postSearch(t, srv.Handler(), SearchRequest{Query: asFloats(d.Queries[0])})
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: code %d, want 413 (%s)", rec.Code, rec.Body.String())
	}
}

func TestHealthzAndStats(t *testing.T) {
	srv, d := testServer(t, 2)
	h := srv.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var health HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil || rec.Code != http.StatusOK {
		t.Fatalf("healthz: code %d err %v", rec.Code, err)
	}
	if health.Status != "ok" || health.Shards != 2 || health.Vectors != 500 || health.Dim != 128 {
		t.Fatalf("bad health payload %+v", health)
	}

	// Stats move after a search.
	postSearch(t, h, SearchRequest{Query: asFloats(d.Queries[0]), K: 3})
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var stats StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil || rec.Code != http.StatusOK {
		t.Fatalf("stats: code %d err %v", rec.Code, err)
	}
	if stats.Batches != 1 || stats.Queries != 1 || stats.ShardSearches != 2 {
		t.Fatalf("bad stats payload %+v", stats)
	}
}

// Flag validation: values that would build a broken engine or batcher
// are rejected up front with a usage error instead of surfacing later
// as a panic or a zero-shard engine.
func TestValidateFlags(t *testing.T) {
	ok := func(err error) bool { return err == nil }
	bad := func(err error) bool { return err != nil }
	cases := []struct {
		name             string
		n, shards        int
		workers          int
		rerank           int
		coalesceMax      int
		coalesceWait     time.Duration
		save, load       string
		serve            string
		cachePages       int
		compactThreshold int
		slowQuery        time.Duration
		want             func(error) bool
	}{
		{"defaults", 20000, 4, 0, 0, 256, 500 * time.Microsecond, "", "", "ram", 0, 0, 0, ok},
		{"rerank", 100, 2, 0, 64, 256, 0, "", "", "ram", 0, 0, 0, ok},
		{"negative rerank", 100, 2, 0, -1, 256, 0, "", "", "ram", 0, 0, 0, bad},
		{"zero n", 0, 4, 0, 0, 256, 0, "", "", "ram", 0, 0, 0, bad},
		{"negative n", -5, 4, 0, 0, 256, 0, "", "", "ram", 0, 0, 0, bad},
		{"zero shards", 100, 0, 0, 0, 256, 0, "", "", "ram", 0, 0, 0, bad},
		{"negative shards", 100, -1, 0, 0, 256, 0, "", "", "ram", 0, 0, 0, bad},
		{"negative workers", 100, 2, -1, 0, 256, 0, "", "", "ram", 0, 0, 0, bad},
		{"coalesce disabled", 100, 2, 0, 0, 0, 0, "", "", "ram", 0, 0, 0, ok},
		{"negative coalesce-max", 100, 2, 0, 0, -1, 0, "", "", "ram", 0, 0, 0, bad},
		{"negative coalesce-wait", 100, 2, 0, 0, 256, -time.Microsecond, "", "", "ram", 0, 0, 0, bad},
		{"save", 100, 2, 0, 0, 256, 0, "dir", "", "ram", 0, 0, 0, ok},
		{"load ignores n/shards", 0, 0, 0, 0, 256, 0, "", "dir", "ram", 0, 0, 0, ok},
		{"save and load", 100, 2, 0, 0, 256, 0, "a", "b", "ram", 0, 0, 0, bad},
		{"mmap serve with load", 0, 0, 0, 0, 256, 0, "", "dir", "mmap", 64, 0, 0, ok},
		{"readat serve with load", 0, 0, 0, 0, 256, 0, "", "dir", "readat", 0, 0, 0, ok},
		{"mmap serve without load", 100, 2, 0, 0, 256, 0, "", "", "mmap", 0, 0, 0, bad},
		{"unknown serve mode", 0, 0, 0, 0, 256, 0, "", "dir", "disk", 0, 0, 0, bad},
		{"negative cache-pages", 0, 0, 0, 0, 256, 0, "", "dir", "mmap", -1, 0, 0, bad},
		{"negative compact-threshold", 100, 2, 0, 0, 256, 0, "", "", "ram", 0, -1, 0, bad},
		{"compact threshold enabled", 100, 2, 0, 0, 256, 0, "", "", "ram", 0, 4096, 0, ok},
		{"slow-query enabled", 100, 2, 0, 0, 256, 0, "", "", "ram", 0, 0, 5 * time.Millisecond, ok},
		{"negative slow-query", 100, 2, 0, 0, 256, 0, "", "", "ram", 0, 0, -time.Millisecond, bad},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateFlags(c.n, c.shards, c.workers, c.rerank, c.coalesceMax, c.coalesceWait,
				c.save, c.load, c.serve, c.cachePages, c.compactThreshold, c.slowQuery)
			if !c.want(err) {
				t.Errorf("validateFlags(%+v) = %v", c, err)
			}
		})
	}
}

// Save/load through the CLI plumbing: a server loaded from a snapshot
// directory answers exactly like the server that saved it, and the
// manifest supplies dataset/algo/dim so no generation or build runs.
func TestSaveLoadIndexFlow(t *testing.T) {
	built, err := buildServer("sift-1b", "hnsw", 500, 3, 2, 7, engine.IndexOpts{}, 32, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(built.Close)
	dir := t.TempDir()
	if err := built.engine.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := loadServer(dir, engine.LoadOptions{Workers: 2}, 32, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(loaded.Close)
	if loaded.dim != built.dim || loaded.dataset != built.dataset || loaded.algo != built.algo {
		t.Fatalf("loaded server identity (%d, %s, %s), want (%d, %s, %s)",
			loaded.dim, loaded.dataset, loaded.algo, built.dim, built.dataset, built.algo)
	}
	if loaded.coalescer == nil {
		t.Error("load path must honour coalescing flags")
	}
	prof := dataset.Sift1B()
	d, err := dataset.Generate(prof, dataset.GenConfig{N: 1, Queries: 6, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range d.Queries {
		req := SearchRequest{Query: asFloats(q), K: 10}
		recA, respA := postSearch(t, built.Handler(), req)
		recB, respB := postSearch(t, loaded.Handler(), req)
		if respA == nil || respB == nil {
			t.Fatalf("query %d failed: built %d, loaded %d", qi, recA.Code, recB.Code)
		}
		if len(respA.Results[0]) != len(respB.Results[0]) {
			t.Fatalf("query %d: result lengths differ", qi)
		}
		for i := range respA.Results[0] {
			a, b := respA.Results[0][i], respB.Results[0][i]
			if a.ID != b.ID || a.Dist != b.Dist {
				t.Fatalf("query %d result %d: built %+v, loaded %+v", qi, i, a, b)
			}
		}
	}
}

// Graceful shutdown: a signal drains the in-flight coalesced search
// (it completes with a 200) before serve returns, and the listener is
// closed afterwards.
func TestServeGracefulShutdown(t *testing.T) {
	srv, d := testServer(t, 2)
	// A long coalescing deadline parks the request in the batcher, so
	// the drain provably covers admission-layer queues, not just handler
	// bodies that already reached the engine.
	srv.EnableCoalescing(batcher.Config{MaxBatch: 1024, MaxWait: 250 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	serveErr := make(chan error, 1)
	hsrv := &http.Server{Handler: srv.Handler()}
	go func() { serveErr <- serve(hsrv, srv, ln, sig, 5*time.Second) }()

	base := "http://" + ln.Addr().String()
	body, _ := json.Marshal(SearchRequest{Query: asFloats(d.Queries[0]), K: 5})
	type result struct {
		code int
		resp SearchResponse
		err  error
	}
	reqDone := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/search", "application/json", bytes.NewReader(body))
		if err != nil {
			reqDone <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var sr SearchResponse
		err = json.NewDecoder(resp.Body).Decode(&sr)
		reqDone <- result{code: resp.StatusCode, resp: sr, err: err}
	}()

	// Wait until the request is queued inside the coalescer, then pull
	// the trigger: the drain must complete it.
	deadline := time.Now().Add(5 * time.Second)
	for srv.coalescer.Stats().Submits == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the coalescer")
		}
		time.Sleep(time.Millisecond)
	}
	sig <- os.Interrupt

	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serve returned %v after signal, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after signal")
	}
	r := <-reqDone
	if r.err != nil || r.code != http.StatusOK {
		t.Fatalf("in-flight request: code %d err %v, want 200 nil", r.code, r.err)
	}
	if len(r.resp.Results) != 1 || len(r.resp.Results[0]) != 5 {
		t.Fatalf("in-flight request returned malformed results %+v", r.resp.Results)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

// A failing listener (closed underneath the server) also shuts the
// server down cleanly rather than leaking the engine pool.
func TestServeListenerError(t *testing.T) {
	srv, _ := testServer(t, 2)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	serveErr := make(chan error, 1)
	go func() { serveErr <- serve(&http.Server{Handler: srv.Handler()}, srv, ln, sig, time.Second) }()
	ln.Close()
	select {
	case err := <-serveErr:
		if err == nil {
			t.Fatal("serve returned nil after listener failure")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after listener failure")
	}
}

func TestBuildServer(t *testing.T) {
	srv, err := buildServer("glove-100", "exact", 300, 2, 2, 1, engine.IndexOpts{}, 64, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	if srv.engine.Shards() != 2 || srv.engine.Len() != 300 {
		t.Fatalf("unexpected engine shape: shards=%d len=%d", srv.engine.Shards(), srv.engine.Len())
	}
	if srv.coalescer == nil {
		t.Error("coalesce-max > 0 must enable coalescing")
	}
	plain, err := buildServer("glove-100", "exact", 100, 1, 1, 1, engine.IndexOpts{}, 0, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(plain.Close)
	if plain.coalescer != nil {
		t.Error("coalesce-max = 0 must disable coalescing")
	}
	if _, err := buildServer("nope", "exact", 100, 1, 1, 1, engine.IndexOpts{}, 0, 0); err == nil {
		t.Error("unknown dataset must fail")
	}
	if _, err := buildServer("sift-1b", "nope", 100, 1, 1, 1, engine.IndexOpts{}, 0, 0); err == nil {
		t.Error("unknown algorithm must fail")
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"ndsearch/internal/ann"
	"ndsearch/internal/dataset"
	"ndsearch/internal/engine"
	"ndsearch/internal/vec"
)

// testServer builds a small exact-sharded server plus the corpus it
// serves, so tests can check wire results against ground truth.
func testServer(t *testing.T, shards int) (*Server, *dataset.Dataset) {
	t.Helper()
	prof := dataset.Sift1B()
	d, err := dataset.Generate(prof, dataset.GenConfig{N: 500, Queries: 16, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := engine.BuilderByName("exact", prof.Metric, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(d.Vectors, engine.Config{Shards: shards, Workers: 4, Builder: b})
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(e, prof.Dim, prof.Name, "exact"), d
}

func postSearch(t *testing.T, h http.Handler, req SearchRequest) (*httptest.ResponseRecorder, *SearchResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		return rec, nil
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response JSON: %v", err)
	}
	return rec, &resp
}

func asFloats(v vec.Vector) []float32 { return []float32(v) }

// The acceptance check: batch /search across >= 2 shards returns exactly
// what an unsharded index returns for every query.
func TestBatchSearchMatchesUnsharded(t *testing.T) {
	srv, d := testServer(t, 3)
	h := srv.Handler()
	req := SearchRequest{K: 10}
	for _, q := range d.Queries {
		req.Queries = append(req.Queries, asFloats(q))
	}
	rec, resp := postSearch(t, h, req)
	if resp == nil {
		t.Fatalf("search failed: %d %s", rec.Code, rec.Body.String())
	}
	if len(resp.Results) != len(d.Queries) {
		t.Fatalf("got %d result lists, want %d", len(resp.Results), len(d.Queries))
	}
	if resp.Batch.Shards != 3 || resp.Batch.Size != len(d.Queries) {
		t.Fatalf("bad batch info %+v", resp.Batch)
	}
	unsharded := ann.NewExact(d.Profile.Metric, d.Vectors)
	for qi, q := range d.Queries {
		want := unsharded.Search(q, 10)
		got := resp.Results[qi]
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || got[i].Dist != want[i].Dist {
				t.Fatalf("query %d result %d: got %+v, want %+v", qi, i, got[i], want[i])
			}
		}
	}
}

func TestSingleQueryAndDefaultK(t *testing.T) {
	srv, d := testServer(t, 2)
	rec, resp := postSearch(t, srv.Handler(), SearchRequest{Query: asFloats(d.Queries[0])})
	if resp == nil {
		t.Fatalf("search failed: %d %s", rec.Code, rec.Body.String())
	}
	if len(resp.Results) != 1 || len(resp.Results[0]) != 10 {
		t.Fatalf("want 1 list of default k=10, got %d lists, first len %d",
			len(resp.Results), len(resp.Results[0]))
	}
}

func TestSearchRejectsBadRequests(t *testing.T) {
	srv, d := testServer(t, 2)
	h := srv.Handler()
	q := asFloats(d.Queries[0])
	for name, req := range map[string]SearchRequest{
		"empty":     {},
		"both":      {Query: q, Queries: [][]float32{q}},
		"wrong dim": {Query: q[:4]},
		"bad k":     {Query: q, K: -1},
	} {
		if rec, _ := postSearch(t, h, req); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400", name, rec.Code)
		}
	}
	// Non-POST and malformed JSON.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /search: code %d, want 405", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader([]byte("{"))))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON: code %d, want 400", rec.Code)
	}
}

func TestSearchRejectsOversizedBody(t *testing.T) {
	srv, d := testServer(t, 2)
	srv.maxBodyBytes = 256
	rec, _ := postSearch(t, srv.Handler(), SearchRequest{Query: asFloats(d.Queries[0])})
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: code %d, want 413 (%s)", rec.Code, rec.Body.String())
	}
}

func TestHealthzAndStats(t *testing.T) {
	srv, d := testServer(t, 2)
	h := srv.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var health HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil || rec.Code != http.StatusOK {
		t.Fatalf("healthz: code %d err %v", rec.Code, err)
	}
	if health.Status != "ok" || health.Shards != 2 || health.Vectors != 500 || health.Dim != 128 {
		t.Fatalf("bad health payload %+v", health)
	}

	// Stats move after a search.
	postSearch(t, h, SearchRequest{Query: asFloats(d.Queries[0]), K: 3})
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var stats StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil || rec.Code != http.StatusOK {
		t.Fatalf("stats: code %d err %v", rec.Code, err)
	}
	if stats.Batches != 1 || stats.Queries != 1 || stats.ShardSearches != 2 {
		t.Fatalf("bad stats payload %+v", stats)
	}
}

func TestBuildServer(t *testing.T) {
	srv, err := buildServer("glove-100", "exact", 300, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if srv.engine.Shards() != 2 || srv.engine.Len() != 300 {
		t.Fatalf("unexpected engine shape: shards=%d len=%d", srv.engine.Shards(), srv.engine.Len())
	}
	if _, err := buildServer("nope", "exact", 100, 1, 1, 1); err == nil {
		t.Error("unknown dataset must fail")
	}
	if _, err := buildServer("sift-1b", "nope", 100, 1, 1, 1); err == nil {
		t.Error("unknown algorithm must fail")
	}
}

package main

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"ndsearch/internal/engine"
	"ndsearch/internal/vec"
)

// Live-mutability endpoints: POST /upsert and POST /delete land writes
// in the engine's delta tier, POST /compact drains it into a new base
// generation on demand, and /stats grows a mutation block. Request
// vectors go through the same finiteness and dimensionality validation
// as /search queries (checkVector), so a NaN can no more enter the
// corpus than it can enter a query.

// EnableCompaction starts a background compactor over the engine,
// draining the delta tier whenever its shadow-set size reaches
// threshold (<= 0 selects engine.DefaultCompactThreshold).
func (s *Server) EnableCompaction(threshold int) {
	s.compactor = engine.NewCompactor(s.engine, threshold)
}

// UpsertItem is one vector on the /upsert wire.
type UpsertItem struct {
	ID     uint32    `json:"id"`
	Vector []float32 `json:"vector"`
}

// UpsertRequest is the /upsert payload: a single item (id + vector) or
// a batch (items), not both.
type UpsertRequest struct {
	ID     *uint32      `json:"id,omitempty"`
	Vector []float32    `json:"vector,omitempty"`
	Items  []UpsertItem `json:"items,omitempty"`
}

// MutateResponse is the /upsert and /delete reply.
type MutateResponse struct {
	// Upserted and Deleted count applied mutations (Deleted counts only
	// IDs that were live).
	Upserted int `json:"upserted,omitempty"`
	Deleted  int `json:"deleted,omitempty"`
	// Live is the engine's live vector count after the call.
	Live int `json:"live"`
}

// allowPost gates mutating endpoints to POST; anything else is a 405
// with an Allow header, mirroring allowGet.
func allowPost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	return true
}

// decodeBody decodes a JSON request body under the server's size cap,
// writing the error response itself when the body is oversized or
// malformed.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", s.maxBodyBytes)
			return false
		}
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return false
	}
	return true
}

// mutationError maps engine mutation errors onto HTTP statuses: a
// read-only engine refuses writes outright (403), a racing compaction
// is a retryable conflict (409), anything else from the write path is
// caller error (400).
func mutationError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, engine.ErrReadOnly):
		httpError(w, http.StatusForbidden, "%v", err)
	case errors.Is(err, engine.ErrCompacting):
		httpError(w, http.StatusConflict, "%v", err)
	default:
		httpError(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Server) handleUpsert(w http.ResponseWriter, r *http.Request) {
	if !allowPost(w, r) {
		return
	}
	var req UpsertRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	var items []UpsertItem
	switch {
	case req.ID != nil && req.Items != nil:
		httpError(w, http.StatusBadRequest, "set either id/vector or items, not both")
		return
	case req.ID != nil:
		items = []UpsertItem{{ID: *req.ID, Vector: req.Vector}}
	case req.Items != nil:
		items = req.Items
	default:
		httpError(w, http.StatusBadRequest, "missing id/vector or items")
		return
	}
	if len(items) == 0 {
		httpError(w, http.StatusBadRequest, "empty items")
		return
	}
	if len(items) > s.maxBatch {
		httpError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(items), s.maxBatch)
		return
	}
	// Validate every vector before applying any, so a rejected batch has
	// no partial effect: the same dim + finiteness gate /search queries
	// pass through.
	for i, it := range items {
		if err := s.checkVector(i, it.Vector); err != nil {
			httpError(w, http.StatusBadRequest, "item %v", err)
			return
		}
	}
	for _, it := range items {
		if err := s.engine.Upsert(it.ID, vec.Vector(it.Vector)); err != nil {
			mutationError(w, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, MutateResponse{
		Upserted: len(items), Live: s.engine.Len(),
	})
}

// DeleteRequest is the /delete payload: a single id or a batch of ids,
// not both.
type DeleteRequest struct {
	ID  *uint32  `json:"id,omitempty"`
	IDs []uint32 `json:"ids,omitempty"`
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !allowPost(w, r) {
		return
	}
	var req DeleteRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	var ids []uint32
	switch {
	case req.ID != nil && req.IDs != nil:
		httpError(w, http.StatusBadRequest, "set either id or ids, not both")
		return
	case req.ID != nil:
		ids = []uint32{*req.ID}
	case req.IDs != nil:
		ids = req.IDs
	default:
		httpError(w, http.StatusBadRequest, "missing id or ids")
		return
	}
	if len(ids) == 0 {
		httpError(w, http.StatusBadRequest, "empty ids")
		return
	}
	if len(ids) > s.maxBatch {
		httpError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(ids), s.maxBatch)
		return
	}
	deleted := 0
	for _, id := range ids {
		was, err := s.engine.Delete(id)
		if err != nil {
			mutationError(w, err)
			return
		}
		if was {
			deleted++
		}
	}
	writeJSON(w, http.StatusOK, MutateResponse{
		Deleted: deleted, Live: s.engine.Len(),
	})
}

// CompactResponse is the /compact reply.
type CompactResponse struct {
	// Generation is the base generation now serving; Vectors its size.
	Generation int     `json:"generation"`
	Vectors    int     `json:"vectors"`
	DurationUS float64 `json:"duration_us"`
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if !allowPost(w, r) {
		return
	}
	if err := s.engine.Compact(); err != nil {
		mutationError(w, err)
		return
	}
	st := s.engine.MutStats()
	writeJSON(w, http.StatusOK, CompactResponse{
		Generation: st.Generation,
		Vectors:    st.LastCompactVectors,
		DurationUS: float64(st.LastCompactDuration) / float64(time.Microsecond),
	})
}

// MutationStats is the live-mutability section of /stats
// (engine.MutStats plus the background compactor's counters).
type MutationStats struct {
	Upserts          int64   `json:"upserts"`
	Deletes          int64   `json:"deletes"`
	Compactions      int64   `json:"compactions"`
	Generation       int     `json:"generation"`
	DeltaLive        int     `json:"delta_live"`
	DeltaTombstones  int     `json:"delta_tombstones"`
	BaseTombstones   int64   `json:"base_tombstones"`
	Compacting       bool    `json:"compacting"`
	LastCompactUS    float64 `json:"last_compact_us,omitempty"`
	LastCompactVecs  int     `json:"last_compact_vectors,omitempty"`
	CompactThreshold int     `json:"compact_threshold,omitempty"`
	CompactorRuns    int64   `json:"compactor_runs,omitempty"`
	CompactorError   string  `json:"compactor_error,omitempty"`
}

// mutationStats assembles the /stats mutation block, or nil for a
// read-only engine (no delta tier to report on).
func (s *Server) mutationStats() *MutationStats {
	if s.engine.ReadOnly() {
		return nil
	}
	st := s.engine.MutStats()
	out := &MutationStats{
		Upserts:         st.Upserts,
		Deletes:         st.Deletes,
		Compactions:     st.Compactions,
		Generation:      st.Generation,
		DeltaLive:       st.DeltaLive,
		DeltaTombstones: st.DeltaTombstones,
		BaseTombstones:  st.BaseTombstones,
		Compacting:      st.Compacting,
		LastCompactUS:   float64(st.LastCompactDuration) / float64(time.Microsecond),
		LastCompactVecs: st.LastCompactVectors,
	}
	if s.compactor != nil {
		out.CompactThreshold = s.compactor.Threshold()
		out.CompactorRuns = s.compactor.Runs()
		if err := s.compactor.LastErr(); err != nil {
			out.CompactorError = err.Error()
		}
	}
	return out
}

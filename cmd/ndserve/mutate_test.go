package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
)

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, bytes.NewReader(raw)))
	return rec
}

func ptr(id uint32) *uint32 { return &id }

func TestUpsertDeleteEndpoints(t *testing.T) {
	srv, d := testServer(t, 3)
	h := srv.Handler()
	dim := srv.dim

	// Upsert a fresh vector, then find it by searching for itself.
	nv := make([]float32, dim)
	copy(nv, d.Vectors[0])
	nv[0] += 1000
	rec := postJSON(t, h, "/upsert", UpsertRequest{ID: ptr(9000), Vector: nv})
	if rec.Code != http.StatusOK {
		t.Fatalf("/upsert: %d %s", rec.Code, rec.Body)
	}
	var mr MutateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Upserted != 1 || mr.Live != len(d.Vectors)+1 {
		t.Fatalf("upsert response %+v", mr)
	}
	if _, resp := postSearch(t, h, SearchRequest{Queries: [][]float32{nv}, K: 1}); resp == nil ||
		resp.Results[0][0].ID != 9000 {
		t.Fatalf("upserted vector not served: %+v", resp)
	}

	// Batch upsert via items.
	items := []UpsertItem{
		{ID: 9001, Vector: asFloats(d.Vectors[1])},
		{ID: 9002, Vector: asFloats(d.Vectors[2])},
	}
	rec = postJSON(t, h, "/upsert", UpsertRequest{Items: items})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch /upsert: %d %s", rec.Code, rec.Body)
	}

	// Delete hides the vector from search; the response counts only IDs
	// that were actually live.
	rec = postJSON(t, h, "/delete", DeleteRequest{IDs: []uint32{9000, 77777}})
	if rec.Code != http.StatusOK {
		t.Fatalf("/delete: %d %s", rec.Code, rec.Body)
	}
	mr = MutateResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Deleted != 1 || mr.Live != len(d.Vectors)+2 {
		t.Fatalf("delete response %+v", mr)
	}
	if _, resp := postSearch(t, h, SearchRequest{Queries: [][]float32{nv}, K: 1}); resp == nil ||
		resp.Results[0][0].ID == 9000 {
		t.Fatalf("deleted vector still served: %+v", resp)
	}

	// Compact drains the delta; results unchanged.
	rec = postJSON(t, h, "/compact", struct{}{})
	if rec.Code != http.StatusOK {
		t.Fatalf("/compact: %d %s", rec.Code, rec.Body)
	}
	var cr CompactResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Generation != 1 || cr.Vectors != len(d.Vectors)+2 {
		t.Fatalf("compact response %+v", cr)
	}
	// ID 9001 duplicates base vector 1, so at k=2 both sit at distance 0
	// in canonical (distance, ID) order.
	if _, resp := postSearch(t, h, SearchRequest{Queries: [][]float32{asFloats(d.Vectors[1])}, K: 2}); resp == nil ||
		resp.Results[0][0].ID != 1 || resp.Results[0][1].ID != 9001 {
		t.Fatalf("post-compact search wrong: %+v", resp)
	}
}

// The satellite's core demand: mutation bodies go through the same
// validation gate as /search queries — NaN/Inf components and
// dimension mismatches are 400s, applied atomically (a bad item in a
// batch rejects the whole batch).
func TestUpsertRejectsInvalidVectors(t *testing.T) {
	srv, d := testServer(t, 2)
	h := srv.Handler()
	dim := srv.dim
	before := srv.engine.Len()

	bad := map[string][]float32{
		"short": make([]float32, dim-1),
		"long":  make([]float32, dim+1),
		"empty": nil,
	}
	for name, v := range bad {
		rec := postJSON(t, h, "/upsert", UpsertRequest{ID: ptr(1), Vector: v})
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s vector: got %d, want 400 (%s)", name, rec.Code, rec.Body)
		}
	}

	// JSON cannot carry NaN/Inf tokens, so non-finite components arrive
	// as decode-level 400s (float64 overflow, float32 overflow, literal
	// NaN); the checkVector gate behind the decoder is what stops
	// non-finite values reaching the engine through any other path.
	for name, raw := range map[string]string{
		"nan token":        `{"id":1,"vector":[NaN]}`,
		"inf overflow":     `{"id":1,"vector":[1e999]}`,
		"neg inf overflow": `{"id":1,"vector":[-1e999]}`,
		"float32 overflow": `{"id":1,"vector":[1e39]}`,
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/upsert", bytes.NewReader([]byte(raw))))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: got %d, want 400 (%s)", name, rec.Code, rec.Body)
		}
	}
	// A batch where only the second item is bad must apply nothing.
	rec := postJSON(t, h, "/upsert", UpsertRequest{Items: []UpsertItem{
		{ID: 9100, Vector: asFloats(d.Vectors[0])},
		{ID: 9101, Vector: bad["short"]},
	}})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("mixed batch: got %d, want 400", rec.Code)
	}
	if srv.engine.Len() != before {
		t.Fatalf("rejected batch mutated the corpus: %d -> %d", before, srv.engine.Len())
	}

	// Malformed shapes.
	for name, body := range map[string]UpsertRequest{
		"both id and items": {ID: ptr(1), Vector: asFloats(d.Vectors[0]),
			Items: []UpsertItem{{ID: 2, Vector: asFloats(d.Vectors[1])}}},
		"neither":     {},
		"empty items": {Items: []UpsertItem{}},
	} {
		if rec := postJSON(t, h, "/upsert", body); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: got %d, want 400", name, rec.Code)
		}
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/upsert", bytes.NewReader([]byte("{"))))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("truncated JSON: got %d, want 400", rec.Code)
	}

	for name, body := range map[string]DeleteRequest{
		"both id and ids": {ID: ptr(1), IDs: []uint32{2}},
		"neither":         {},
		"empty ids":       {IDs: []uint32{}},
	} {
		if rec := postJSON(t, h, "/delete", body); rec.Code != http.StatusBadRequest {
			t.Errorf("delete %s: got %d, want 400", name, rec.Code)
		}
	}
}

func TestMutationEndpointsRejectWrongMethod(t *testing.T) {
	srv, _ := testServer(t, 2)
	h := srv.Handler()
	for _, path := range []string{"/upsert", "/delete", "/compact"} {
		for _, method := range []string{http.MethodGet, http.MethodPut, http.MethodDelete, http.MethodHead} {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
			if rec.Code != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: got %d, want 405", method, path, rec.Code)
			}
			if allow := rec.Header().Get("Allow"); allow != "POST" {
				t.Errorf("%s %s: Allow = %q", method, path, allow)
			}
		}
	}
}

func TestStatsMutationBlock(t *testing.T) {
	srv, d := testServer(t, 2)
	h := srv.Handler()

	readStats := func() *StatsResponse {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("/stats: %d", rec.Code)
		}
		var st StatsResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		return &st
	}

	st := readStats()
	if st.Mutation == nil {
		t.Fatal("mutable engine reported no mutation block")
	}
	if st.Mutation.Upserts != 0 || st.Mutation.Generation != 0 {
		t.Fatalf("fresh mutation block %+v", st.Mutation)
	}

	postJSON(t, h, "/upsert", UpsertRequest{ID: ptr(9200), Vector: asFloats(d.Vectors[0])})
	postJSON(t, h, "/delete", DeleteRequest{ID: ptr(3)})
	st = readStats()
	if st.Mutation.Upserts != 1 || st.Mutation.Deletes != 1 ||
		st.Mutation.DeltaLive != 1 || st.Mutation.BaseTombstones != 1 {
		t.Fatalf("mutation block after writes %+v", st.Mutation)
	}

	postJSON(t, h, "/compact", struct{}{})
	st = readStats()
	if st.Mutation.Compactions != 1 || st.Mutation.Generation != 1 ||
		st.Mutation.DeltaLive != 0 || st.Mutation.BaseTombstones != 0 {
		t.Fatalf("mutation block after compact %+v", st.Mutation)
	}
}

// EnableCompaction wires the background compactor: once the delta
// reaches the threshold, a compaction lands without any /compact call.
func TestBackgroundCompaction(t *testing.T) {
	srv, d := testServer(t, 2)
	srv.EnableCompaction(4)
	h := srv.Handler()

	var items []UpsertItem
	for i := 0; i < 8; i++ {
		items = append(items, UpsertItem{ID: uint32(9300 + i), Vector: asFloats(d.Vectors[i])})
	}
	rec := postJSON(t, h, "/upsert", UpsertRequest{Items: items})
	if rec.Code != http.StatusOK {
		t.Fatalf("/upsert: %d %s", rec.Code, rec.Body)
	}

	// The compactor runs asynchronously; wait for it to land by polling
	// the engine (bounded by the test deadline rather than a sleep).
	for srv.engine.MutStats().Compactions == 0 {
		runtime.Gosched()
	}
	st := srv.engine.MutStats()
	if st.Generation < 1 {
		t.Fatalf("background compaction left generation %d", st.Generation)
	}
	stats := srv.mutationStats()
	if stats.CompactThreshold != 4 || stats.CompactorRuns < 1 {
		t.Fatalf("compactor stats %+v", stats)
	}
	if _, resp := postSearch(t, h, SearchRequest{Queries: [][]float32{asFloats(d.Vectors[0])}, K: 1}); resp == nil {
		t.Fatal("search failed after background compaction")
	}
}

// Package main's bench suite regenerates every table and figure of the
// paper (one benchmark per experiment) and reports the headline metric
// of each as a custom benchmark unit, so `go test -bench=. -benchmem`
// doubles as the full reproduction run. The printed tables land on
// stdout once per benchmark (first iteration only).
package main

import (
	"os"
	"sync"
	"testing"

	"ndsearch/internal/figures"
)

// benchSuite is shared across benchmarks; building all ten workloads
// once keeps the run affordable.
var (
	benchSuite *figures.Suite
	suiteOnce  sync.Once
)

func suite() *figures.Suite {
	suiteOnce.Do(func() {
		scale := figures.DefaultScale()
		if testing.Short() {
			scale = figures.TestScale()
		}
		// Keep the shared bench suite moderate (Fig. 19 alone runs 120
		// simulations over 8x-batch workloads): the full `-n/-batch`
		// sweep is available through cmd/ndsearch.
		scale.N = 2000
		scale.Batch = 256
		benchSuite = figures.NewSuite(scale)
	})
	return benchSuite
}

// run1 executes a one-table experiment b.N times, printing the table on
// the first iteration and reporting rows/op.
func run1(b *testing.B, name string, fn func() (*figures.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := fn()
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		if i == 0 {
			t.Fprint(os.Stdout)
		}
		b.ReportMetric(float64(len(t.Rows)), "rows")
	}
}

func run2(b *testing.B, name string, fn func() (*figures.Table, *figures.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		ta, tb, err := fn()
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		if i == 0 {
			ta.Fprint(os.Stdout)
			tb.Fprint(os.Stdout)
		}
		b.ReportMetric(float64(len(ta.Rows)+len(tb.Rows)), "rows")
	}
}

func BenchmarkFig01Breakdown(b *testing.B)  { run1(b, "fig1", suite().Fig1) }
func BenchmarkFig02PCIe(b *testing.B)       { run1(b, "fig2a", suite().Fig2a) }
func BenchmarkFig02Roofline(b *testing.B)   { run1(b, "fig2b", suite().Fig2b) }
func BenchmarkFig04Access(b *testing.B)     { run2(b, "fig4", suite().Fig4) }
func BenchmarkFig10Reorder(b *testing.B)    { run1(b, "fig10", suite().Fig10) }
func BenchmarkFig13Throughput(b *testing.B) { run1(b, "fig13", suite().Fig13) }
func BenchmarkFig14Static(b *testing.B)     { run1(b, "fig14", suite().Fig14) }
func BenchmarkFig15Dynamic(b *testing.B)    { run1(b, "fig15", suite().Fig15) }
func BenchmarkFig16Ablation(b *testing.B)   { run1(b, "fig16", suite().Fig16) }
func BenchmarkFig17Breakdown(b *testing.B)  { run1(b, "fig17", suite().Fig17) }
func BenchmarkFig18ECC(b *testing.B)        { run2(b, "fig18", suite().Fig18) }
func BenchmarkFig19Batch(b *testing.B)      { run1(b, "fig19", suite().Fig19) }
func BenchmarkFig20Energy(b *testing.B)     { run1(b, "fig20", suite().Fig20) }
func BenchmarkFig21OtherAlgos(b *testing.B) { run1(b, "fig21", suite().Fig21) }
func BenchmarkTable1PowerArea(b *testing.B) { run1(b, "table1", suite().Table1) }
func BenchmarkDiscussionIVFPQ(b *testing.B) { run1(b, "discussion", suite().Discussion) }
